//! MiniKV: a RocksDB-flavoured key-value store over the file system.
//!
//! The `fillsync` path of §6.4: every put appends a record to the
//! write-ahead log and fsyncs it. When the memtable fills, it is
//! flushed to an immutable SST file and the WAL is rotated — the
//! background write pattern that benefits from Rio's merging.

use std::collections::BTreeMap;

use rio_fs::{BlockDev, FsError, RioFs};

/// WAL record header: key length + value length.
const REC_HEADER: usize = 8;

/// A tiny LSM store.
pub struct MiniKv {
    memtable: BTreeMap<Vec<u8>, Vec<u8>>,
    memtable_bytes: usize,
    /// Flush threshold in bytes.
    memtable_cap: usize,
    wal_name: String,
    wal_offset: u64,
    wal_seq: u64,
    sst_seq: u64,
    core: usize,
    /// Puts served (stats).
    pub puts: u64,
    /// Memtable flushes performed (stats).
    pub flushes: u64,
}

impl MiniKv {
    /// Opens (creates) a store committing through journal area `core`.
    pub fn open<D: BlockDev>(fs: &mut RioFs<D>, core: usize, memtable_cap: usize) -> Self {
        let wal_name = "kv.wal.0".to_string();
        if fs.stat(&wal_name).is_none() {
            fs.create(&wal_name).expect("create WAL");
        }
        MiniKv {
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            memtable_cap: memtable_cap.max(4096),
            wal_name,
            wal_offset: 0,
            wal_seq: 0,
            sst_seq: 0,
            core,
            puts: 0,
            flushes: 0,
        }
    }

    /// `fillsync` put: WAL append + fsync, then memtable insert.
    pub fn put<D: BlockDev>(
        &mut self,
        fs: &mut RioFs<D>,
        key: &[u8],
        value: &[u8],
    ) -> Result<(), FsError> {
        let mut rec = Vec::with_capacity(REC_HEADER + key.len() + value.len());
        rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
        rec.extend_from_slice(&(value.len() as u32).to_le_bytes());
        rec.extend_from_slice(key);
        rec.extend_from_slice(value);
        if self.wal_offset + rec.len() as u64 > rio_fs::layout::Inode::max_size() {
            self.rotate_wal(fs)?;
        }
        fs.write(&self.wal_name, self.wal_offset, &rec)?;
        fs.fsync(&self.wal_name, self.core)?;
        self.wal_offset += rec.len() as u64;

        self.memtable_bytes += key.len() + value.len();
        self.memtable.insert(key.to_vec(), value.to_vec());
        self.puts += 1;
        if self.memtable_bytes >= self.memtable_cap {
            self.flush_memtable(fs)?;
        }
        Ok(())
    }

    /// Point lookup (memtable, then SSTs newest-first).
    pub fn get<D: BlockDev>(&self, fs: &RioFs<D>, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(v) = self.memtable.get(key) {
            return Some(v.clone());
        }
        for seq in (0..self.sst_seq).rev() {
            let name = format!("kv.sst.{seq}");
            let size = fs.stat(&name)? as usize;
            let data = fs.read(&name, 0, size).ok()?;
            if let Some(v) = Self::search_sst(&data, key) {
                return Some(v);
            }
        }
        None
    }

    fn search_sst(data: &[u8], key: &[u8]) -> Option<Vec<u8>> {
        let mut at = 0usize;
        while at + REC_HEADER <= data.len() {
            let klen = u32::from_le_bytes(data[at..at + 4].try_into().ok()?) as usize;
            let vlen = u32::from_le_bytes(data[at + 4..at + 8].try_into().ok()?) as usize;
            if klen == 0 && vlen == 0 {
                break;
            }
            let k = &data[at + REC_HEADER..at + REC_HEADER + klen];
            if k == key {
                let v = &data[at + REC_HEADER + klen..at + REC_HEADER + klen + vlen];
                return Some(v.to_vec());
            }
            at += REC_HEADER + klen + vlen;
        }
        None
    }

    fn rotate_wal<D: BlockDev>(&mut self, fs: &mut RioFs<D>) -> Result<(), FsError> {
        // Flush the memtable so the old WAL becomes garbage, then swap.
        self.flush_memtable(fs)?;
        let old = self.wal_name.clone();
        self.wal_seq += 1;
        self.wal_name = format!("kv.wal.{}", self.wal_seq);
        fs.create(&self.wal_name)?;
        fs.unlink(&old)?;
        self.wal_offset = 0;
        Ok(())
    }

    /// Writes the memtable as an SST file (sorted, sequential writes —
    /// the block-merging beneficiary).
    pub fn flush_memtable<D: BlockDev>(&mut self, fs: &mut RioFs<D>) -> Result<(), FsError> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let name = format!("kv.sst.{}", self.sst_seq);
        self.sst_seq += 1;
        fs.create(&name)?;
        let mut data = Vec::with_capacity(self.memtable_bytes + self.memtable.len() * REC_HEADER);
        for (k, v) in &self.memtable {
            data.extend_from_slice(&(k.len() as u32).to_le_bytes());
            data.extend_from_slice(&(v.len() as u32).to_le_bytes());
            data.extend_from_slice(k);
            data.extend_from_slice(v);
        }
        // SSTs are bounded by the file-size cap; callers size the
        // memtable under it.
        fs.write(&name, 0, &data)?;
        fs.fsync(&name, self.core)?;
        self.memtable.clear();
        self.memtable_bytes = 0;
        self.flushes += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_fs::MemDev;

    #[test]
    fn put_get_round_trip() {
        let mut fs = RioFs::mkfs(MemDev::new(8192), 2);
        let mut kv = MiniKv::open(&mut fs, 0, 16 * 1024);
        kv.put(&mut fs, b"alpha", b"1").expect("put");
        kv.put(&mut fs, b"beta", b"2").expect("put");
        assert_eq!(kv.get(&fs, b"alpha"), Some(b"1".to_vec()));
        assert_eq!(kv.get(&fs, b"beta"), Some(b"2".to_vec()));
        assert_eq!(kv.get(&fs, b"gamma"), None);
    }

    #[test]
    fn fillsync_pattern_fsyncs_every_put() {
        let mut fs = RioFs::mkfs(MemDev::new(8192), 2);
        let mut kv = MiniKv::open(&mut fs, 0, 1 << 20);
        for i in 0..40u32 {
            let key = format!("key{i:08}");
            kv.put(&mut fs, key.as_bytes(), &[7u8; 1024]).expect("put");
        }
        assert_eq!(fs.fsyncs, 40, "one fsync per put (fillsync)");
        assert!(fs.fsck().is_empty());
    }

    #[test]
    fn memtable_flush_produces_searchable_sst() {
        let mut fs = RioFs::mkfs(MemDev::new(8192), 2);
        // Tiny memtable: flush after a couple of puts.
        let mut kv = MiniKv::open(&mut fs, 0, 4096);
        for i in 0..12u32 {
            let key = format!("k{i:04}");
            kv.put(&mut fs, key.as_bytes(), &[i as u8; 512])
                .expect("put");
        }
        assert!(kv.flushes > 0, "memtable flushed at least once");
        // Values are found through the SSTs after flushes.
        for i in 0..12u32 {
            let key = format!("k{i:04}");
            assert_eq!(
                kv.get(&fs, key.as_bytes()),
                Some(vec![i as u8; 512]),
                "missing {key}"
            );
        }
        assert!(fs.fsck().is_empty());
    }

    #[test]
    fn updates_overwrite_in_lookups() {
        let mut fs = RioFs::mkfs(MemDev::new(8192), 2);
        let mut kv = MiniKv::open(&mut fs, 0, 2048);
        kv.put(&mut fs, b"k", b"old").expect("put");
        kv.flush_memtable(&mut fs).expect("flush");
        kv.put(&mut fs, b"k", b"new").expect("put");
        assert_eq!(kv.get(&fs, b"k"), Some(b"new".to_vec()), "memtable wins");
        kv.flush_memtable(&mut fs).expect("flush");
        assert_eq!(kv.get(&fs, b"k"), Some(b"new".to_vec()), "newest SST wins");
    }

    #[test]
    fn wal_rotation_preserves_data() {
        let mut fs = RioFs::mkfs(MemDev::new(16384), 2);
        let mut kv = MiniKv::open(&mut fs, 0, 8 * 1024);
        // Write enough 1 KB values to force a WAL rotation (48 KB cap).
        for i in 0..80u32 {
            let key = format!("key{i:06}");
            kv.put(&mut fs, key.as_bytes(), &[9u8; 1024]).expect("put");
        }
        for i in 0..80u32 {
            let key = format!("key{i:06}");
            assert!(kv.get(&fs, key.as_bytes()).is_some(), "lost {key}");
        }
        assert!(fs.fsck().is_empty());
    }
}
