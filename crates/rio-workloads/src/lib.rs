//! Application workloads over RioFS (§6.3–§6.4).
//!
//! * [`fio`] — the FIO-style microbenchmark driver (append + fsync).
//! * [`varmail`] — the Filebench Varmail personality: create / append /
//!   fsync / read / delete over a pool of mail files.
//! * [`minikv`] — a RocksDB-flavoured key-value store: a write-ahead
//!   log with per-put fsync (`fillsync`), an in-memory memtable, and
//!   SST flushes, all over the file system.
//!
//! Each workload runs against the *real* [`rio_fs::RioFs`] for
//! functional correctness (these are also the examples' engines); the
//! performance figures use the same I/O shapes through `rio-stack`'s
//! cluster (see `rio-bench`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod fio;
pub mod minikv;
pub mod varmail;

pub use fio::FioJob;
pub use minikv::MiniKv;
pub use varmail::{Varmail, VarmailStats};
