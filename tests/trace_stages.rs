//! Stage-trace invariants: for every ordering engine, over lossless,
//! lossy and crash-injected fabrics, per-command traces must be
//! monotone, complete, exactly-once, and their retransmit annotations
//! must reconcile with the wire-level NIC counters.

use proptest::prelude::*;
use rio::sim::SimTime;
use rio::ssd::SsdProfile;
use rio::stack::trace::{Stage, STAGES};
use rio::stack::{
    Cluster, ClusterConfig, FabricConfig, FaultPlan, OrderingMode, RunMetrics, TraceConfig,
    Workload,
};

fn modes() -> [OrderingMode; 4] {
    [
        OrderingMode::Orderless,
        OrderingMode::LinuxNvmf,
        OrderingMode::Horae,
        OrderingMode::Rio { merge: true },
    ]
}

/// A small traced cluster: single target unless `crash` (which needs
/// the two-target topology so one target can die), ring sized so no
/// record is ever evicted.
fn traced_cfg(mode: OrderingMode, threads: usize, loss: f64, paths: usize, crash: bool) -> ClusterConfig {
    let mut cfg = if crash {
        ClusterConfig::four_ssd_two_targets(mode, threads)
    } else {
        ClusterConfig::single_ssd(mode, SsdProfile::optane905p(), threads)
    };
    cfg.initiator_cores = 8;
    for t in &mut cfg.targets {
        t.cores = 8;
    }
    cfg.qps_per_target = 8;
    cfg.max_inflight_per_stream = 16;
    if loss > 0.0 {
        cfg.net = FabricConfig::lossy(loss, paths);
        cfg.net.migrate_every = 32;
    }
    if crash {
        cfg.faults = FaultPlan::survivable_crash(SimTime::from_nanos(400_000), vec![1]);
    }
    cfg.trace = Some(TraceConfig { ring: 1 << 16 });
    cfg
}

/// The invariant pack every traced run must satisfy.
fn check_trace_invariants(mode: &OrderingMode, m: &RunMetrics) {
    let label = mode.label();
    let b = m.breakdown.as_ref().expect("tracing was enabled");
    assert_eq!(b.records_dropped, 0, "{label}: ring sized for the run");
    assert_eq!(
        b.records.len() as u64,
        b.completed + b.aborted,
        "{label}: every closed trace is in the ring"
    );
    assert!(b.completed > 0, "{label}: some commands completed");
    assert_eq!(
        b.completed + b.aborted,
        m.commands_sent,
        "{label}: every command opened exactly one trace and closed it"
    );

    let mut seen = std::collections::HashSet::new();
    for r in &b.records {
        // 1. Stage stamps are monotonically non-decreasing in stage
        //    order.
        let mut prev = None;
        for i in 0..STAGES {
            if let Some(t) = r.stages[i] {
                if let Some(p) = prev {
                    assert!(t >= p, "{label}: stage {i} of {r:?} goes backwards");
                }
                prev = Some(t);
            }
        }
        // 2. Completed commands carry the full chain (PMR persist is
        //    Rio-only); aborted ones died mid-chain with the crash
        //    annotated.
        match r.aborted_by {
            None => {
                assert!(r.chain_complete(), "{label}: incomplete chain in {r:?}");
                assert!(
                    r.stage(Stage::Delivered).unwrap() >= r.stage(Stage::Complete).unwrap(),
                    "{label}: delivery precedes completion"
                );
                assert_eq!(
                    r.stage(Stage::PmrPersist).is_some(),
                    r.ordered,
                    "{label}: PMR stage iff ordered"
                );
            }
            Some(fault) => {
                assert_eq!(fault, 0, "{label}: single-fault plans only");
                assert!(
                    r.stage(Stage::Delivered).is_none(),
                    "{label}: an aborted command must not reach delivery"
                );
            }
        }
        // 3. Exactly-once: no two live ordered traces in one epoch
        //    describe the same fragment. (Retransmits annotate the one
        //    trace; crash redispatch opens a new epoch.) Baseline
        //    commands carry no sequence range — distinct FLUSH legs
        //    would collide on the key — so for them exactly-once is
        //    pinned by the aggregate count check above instead.
        if r.ordered && r.aborted_by.is_none() {
            let key = (
                r.epoch, r.stream, r.seq_start, r.seq_end, r.server, r.ssd, r.lba, r.is_flush,
            );
            assert!(seen.insert(key), "{label}: duplicate trace for {key:?}");
        }
    }

    // 4. Retransmit annotations reconcile with the wire: every data,
    //    capsule and completion retransmission belongs to exactly one
    //    command, so the per-command counts sum to the NIC counter.
    //    (Horae's control path retransmits inside `Fabric::send`,
    //    invisible to commands, so it only gets an upper bound.)
    if matches!(mode, OrderingMode::Horae) {
        assert!(
            b.retx_pkts <= m.net.retransmits,
            "{label}: trace retx {} beyond wire {}",
            b.retx_pkts,
            m.net.retransmits
        );
    } else {
        assert_eq!(
            b.retx_pkts, m.net.retransmits,
            "{label}: per-command retx annotations must partition the wire count"
        );
        if m.recoveries.is_empty() {
            assert_eq!(
                b.retx_rounds, m.net.retx_rounds,
                "{label}: per-command retx rounds must partition the wire rounds"
            );
        } else {
            // The wire counts a round at drop time; a crash can clear
            // the resend event before the trace annotates it.
            assert!(
                b.retx_rounds <= m.net.retx_rounds,
                "{label}: trace rounds {} beyond wire {}",
                b.retx_rounds,
                m.net.retx_rounds
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 20,
        ..ProptestConfig::default()
    })]

    /// Random engine x loss x paths x crash plan: the invariant pack
    /// holds for every completed run.
    #[test]
    fn prop_trace_stage_monotonic(
        mode_idx in 0usize..4,
        threads in 1usize..=3,
        loss_idx in 0usize..3,
        paths in 1usize..=2,
        crash in any::<bool>(),
        groups in 40u64..=120,
    ) {
        let mode = modes()[mode_idx].clone();
        let loss = [0.0, 1e-3, 0.02][loss_idx];
        // Fault plans require Rio (recovery needs persisted attributes).
        let crash = crash && matches!(mode, OrderingMode::Rio { .. });
        let groups = if mode == OrderingMode::LinuxNvmf { groups / 4 } else { groups };
        // A crash case needs enough work that the 400 us fault fires
        // mid-run with commands in flight; pin the known-good shape.
        let (threads, groups) = if crash { (3, 400) } else { (threads, groups) };
        let cfg = traced_cfg(mode.clone(), threads, loss, paths, crash);
        let m = Cluster::new(cfg, Workload::random_4k(threads, groups)).run();
        prop_assert_eq!(m.groups_done, threads as u64 * groups);
        check_trace_invariants(&mode, &m);
        if crash {
            prop_assert_eq!(m.recoveries.len(), 1);
            let b = m.breakdown.as_ref().unwrap();
            // The crash fired mid-run, so epoch-1 records exist.
            prop_assert!(b.records.iter().any(|r| r.epoch == 1));
        }
    }
}

#[test]
fn traced_crash_run_aborts_inflight_and_survives() {
    let cfg = traced_cfg(OrderingMode::Rio { merge: true }, 3, 1e-3, 2, true);
    let m = Cluster::new(cfg, Workload::random_4k(3, 400)).run();
    assert_eq!(m.groups_done, 1_200, "crash loses no groups");
    check_trace_invariants(&OrderingMode::Rio { merge: true }, &m);
    let b = m.breakdown.as_ref().unwrap();
    assert!(b.aborted > 0, "a mid-run crash strands in-flight commands");
    assert!(
        b.records.iter().any(|r| r.aborted_by == Some(0)),
        "aborted records name the fault"
    );
}

#[test]
fn traced_lossy_run_annotates_retransmits_on_the_right_commands() {
    let cfg = traced_cfg(OrderingMode::Rio { merge: true }, 3, 0.05, 2, false);
    let m = Cluster::new(cfg, Workload::random_4k(3, 400)).run();
    check_trace_invariants(&OrderingMode::Rio { merge: true }, &m);
    let b = m.breakdown.as_ref().unwrap();
    assert!(b.retx_pkts > 0, "5% loss must retransmit");
    let annotated: u64 = b
        .records
        .iter()
        .map(|r| u64::from(r.retx_pkts))
        .sum();
    assert_eq!(annotated, b.retx_pkts, "aggregate equals per-record sum");
    assert!(
        b.records.iter().any(|r| r.retx_pkts == 0),
        "not every command is punished for loss"
    );
}

#[test]
fn breakdown_quantiles_cover_every_stage_for_rio() {
    let cfg = traced_cfg(OrderingMode::Rio { merge: true }, 3, 0.0, 1, false);
    let m = Cluster::new(cfg, Workload::random_4k(3, 400)).run();
    let b = m.breakdown.as_ref().unwrap();
    for (seg, label) in rio::stack::LatencyBreakdown::SEGMENT_LABELS.iter().enumerate() {
        assert!(
            b.stages[seg].count() > 0,
            "Rio must exercise segment {label}"
        );
        let (p50, p99, p999) = b.segment_quantiles(seg);
        assert!(p50 <= p99 && p99 <= p999, "{label}: quantile order");
    }
    let (p50, p99, _) = b.total_quantiles();
    assert!(p50 <= p99);
    assert!(p50 >= b.stages[0].quantile(0.5), "total covers the chain");
}
