//! Facade wiring smoke test: every `pub use` in `src/lib.rs` must
//! resolve, and a minimal end-to-end simulation must run purely through
//! `rio::` paths. Catches regressions where a sub-crate rename or a
//! dropped re-export silently breaks downstream users of the facade.

use rio::block::{Bio, BioFlags, Plug, StripedVolume};
use rio::fs::{BlockDev, MemDev, OrderedDev, RioFs};
use rio::net::{Fabric, FabricProfile};
use rio::order::{
    BlockRange, InOrderCompleter, OrderQueue, OrderQueueConfig, OrderingAttr, PmrLog, Rio,
    Sequencer, StreamId, SubmissionGate, SubmitOpts,
};
use rio::proto::{Cqe, NvmOpcode, PmrRecord, RioExt, RioFlags, RioOpcode, Sqe, Status};
use rio::sim::{EventHeap, SimDuration, SimRng, SimTime};
use rio::ssd::{Pmr, Ssd, SsdProfile};
use rio::stack::{Cluster, ClusterConfig, OrderingMode, RunMetrics, TargetConfig, Workload};
use rio::workloads::{FioJob, MiniKv, Varmail};

/// Touch one real constructor per facade module so the re-export graph
/// is exercised beyond name resolution.
#[test]
fn facade_types_construct() {
    let mut seq = Sequencer::new(1, 1);
    let attr = seq.submit(
        StreamId(0),
        BlockRange::new(0, 1),
        SubmitOpts {
            end_group: true,
            ..Default::default()
        },
    );
    assert_eq!(attr.stream, StreamId(0));
    let _ = OrderQueue::new(StreamId(0), OrderQueueConfig::default());
    let _ = PmrLog::format(1 << 20, 24);
    let _ = Sqe::write(1, 0, 8);
    let _ = BlockRange::new(0, 8);
    let _ = SsdProfile::optane905p();
    let _ = FabricProfile::connectx6();
    let _ = MemDev::new(64);
    let _ = OrderedDev::new(64);
    let _ = SimRng::seed_from_u64(1);
    let _ = SimTime::ZERO;

    // Silence "unused import" only for items that are type-level here.
    fn _assert_types(
        _: fn() -> (
            Option<Bio>,
            Option<BioFlags>,
            Option<Plug>,
            Option<StripedVolume>,
            Option<Fabric>,
            Option<InOrderCompleter>,
            Option<OrderingAttr>,
            Option<Rio>,
            Option<SubmissionGate>,
            Option<SubmitOpts>,
            Option<Cqe>,
            Option<NvmOpcode>,
            Option<PmrRecord>,
            Option<RioExt>,
            Option<RioFlags>,
            Option<RioOpcode>,
            Option<Status>,
            Option<EventHeap<u32>>,
            Option<SimDuration>,
            Option<Pmr>,
            Option<Ssd>,
            Option<RunMetrics>,
            Option<TargetConfig>,
            Option<FioJob>,
            Option<MiniKv>,
            Option<Varmail>,
        ),
    ) {
    }
}

/// A tiny cluster simulation runs end-to-end through `rio::` paths and
/// produces non-trivial metrics.
#[test]
fn facade_minimal_stack_simulation() {
    let cfg = ClusterConfig::single_ssd(OrderingMode::Rio { merge: true }, SsdProfile::pm981(), 2);
    let metrics = Cluster::new(cfg, Workload::random_4k(2, 50)).run();
    assert!(metrics.block_iops() > 0.0, "simulation produced no IOPS");
    assert!(metrics.blocks_done > 0, "no blocks completed");
}

/// The facade's fs + device path works: write, fsync, read back.
#[test]
fn facade_fs_round_trip() {
    let mut fs = RioFs::mkfs(OrderedDev::new(512), 1);
    fs.create("hello").expect("create");
    fs.write("hello", 0, b"rio facade").expect("write");
    fs.fsync("hello", 0).expect("fsync");
    let back = fs.read("hello", 0, 10).expect("read");
    assert_eq!(&back, b"rio facade");
    let dev = fs.into_device();
    assert_eq!(BlockDev::n_blocks(&dev), 512);
}
