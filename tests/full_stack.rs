//! Cross-crate integration tests: the whole pipeline from workload to
//! device and back, plus end-to-end crash consistency.

use rio::fs::{OrderedDev, RioFs};
use rio::sim::SimTime;
use rio::ssd::SsdProfile;
use rio::stack::crash::run_crash_recovery;
use rio::stack::{
    Cluster, ClusterConfig, FabricConfig, FaultPlan, InitiatorConfig, OrderingMode,
    TelemetryConfig, TraceConfig, Workload,
};
use rio::workloads::{MiniKv, Varmail};

fn small(mode: OrderingMode, threads: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::single_ssd(mode, SsdProfile::optane905p(), threads);
    cfg.initiator_cores = 8;
    cfg.targets[0].cores = 8;
    cfg.qps_per_target = 8;
    cfg.max_inflight_per_stream = 16;
    cfg
}

#[test]
fn ordering_ladder_from_the_paper() {
    // Orderless >= Rio > Horae > Linux, the shape of Figs. 2 and 10.
    let run = |mode: OrderingMode, groups: u64| {
        Cluster::new(small(mode, 4), Workload::random_4k(4, groups))
            .run()
            .block_iops()
    };
    let orderless = run(OrderingMode::Orderless, 2_000);
    let rio = run(OrderingMode::Rio { merge: true }, 2_000);
    let horae = run(OrderingMode::Horae, 2_000);
    let linux = run(OrderingMode::LinuxNvmf, 200);
    assert!(rio > horae && horae > linux, "{rio} / {horae} / {linux}");
    assert!(rio > orderless * 0.6, "Rio must track orderless");
}

#[test]
fn rio_merging_halves_journal_commands() {
    let run = |merge: bool| {
        Cluster::new(
            small(OrderingMode::Rio { merge }, 1),
            Workload::journal_triplet(1, 400),
        )
        .run()
    };
    let merged = run(true);
    let plain = run(false);
    assert_eq!(merged.blocks_done, plain.blocks_done);
    assert!(
        merged.commands_sent * 2 <= plain.commands_sent,
        "merge {} vs plain {}",
        merged.commands_sent,
        plain.commands_sent
    );
}

#[test]
fn whole_cluster_runs_are_deterministic() {
    let run = || {
        let m = Cluster::new(
            small(OrderingMode::Rio { merge: true }, 3),
            Workload::fsync_append(3, 100),
        )
        .run();
        (m.ops_done, m.span.as_nanos(), m.commands_sent)
    };
    assert_eq!(run(), run());
}

#[test]
fn run_metrics_snapshot_identical_across_all_modes() {
    // The engine-internals safety rail: for every ordering engine, the
    // same `(config, seed)` must reproduce the *entire* `RunMetrics` —
    // every counter, histogram bucket and utilisation figure — so slab,
    // ring or heap refactors cannot silently change replay behavior.
    for mode in [
        OrderingMode::Orderless,
        OrderingMode::LinuxNvmf,
        OrderingMode::Horae,
        OrderingMode::Rio { merge: true },
    ] {
        let groups = if mode == OrderingMode::LinuxNvmf {
            60
        } else {
            400
        };
        let run = || {
            Cluster::new(small(mode.clone(), 3), Workload::random_4k(3, groups)).run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "{} replay diverged", mode.label());
        assert!(a.events_processed > 0, "{} processed no events", mode.label());
        assert_eq!(
            a.events_processed,
            b.events_processed,
            "{} event count diverged",
            mode.label()
        );
    }
}

#[test]
fn run_metrics_snapshot_identical_on_a_lossy_fabric() {
    // Same rail as above, but over the lossy multi-path fabric: drops,
    // go-back-N timeouts and path migration are all driven by the
    // seeded rng, so the same `(config, seed)` must still reproduce
    // the entire `RunMetrics` — including the fabric counters — for
    // every ordering engine.
    for mode in [
        OrderingMode::Orderless,
        OrderingMode::LinuxNvmf,
        OrderingMode::Horae,
        OrderingMode::Rio { merge: true },
    ] {
        let groups = if mode == OrderingMode::LinuxNvmf {
            60
        } else {
            400
        };
        let run = || {
            let mut cfg = small(mode.clone(), 3);
            cfg.net = FabricConfig::lossy(0.05, 2);
            cfg.net.migrate_every = 32;
            Cluster::new(cfg, Workload::random_4k(3, groups)).run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "{} lossy replay diverged", mode.label());
        assert!(a.net.drops > 0, "{}: 5% loss must drop packets", mode.label());
        assert!(
            a.net.retransmits > 0,
            "{}: dropped packets must be retransmitted",
            mode.label()
        );
        assert_eq!(
            a.groups_done,
            3 * groups,
            "{}: loss must not lose groups",
            mode.label()
        );
    }
}

#[test]
fn run_metrics_snapshot_identical_with_crash_under_loss() {
    // The hardest replay case: packet loss, multi-path spreading AND a
    // mid-flight power failure of one target, all driven by the seeded
    // rng and the virtual clock. The same `(config, seed)` must still
    // reproduce the entire `RunMetrics` — recovery breakdowns, epochs
    // and fabric counters included — and the run must survive the
    // crash with every group delivered exactly once. The volatile-cache
    // pm981 drives in this topology also exercise the valid-prefix <
    // delivered-prefix rollback path.
    let run = || {
        let mut cfg = ClusterConfig::four_ssd_two_targets(OrderingMode::Rio { merge: true }, 3);
        cfg.initiator_cores = 8;
        for t in &mut cfg.targets {
            t.cores = 8;
        }
        cfg.qps_per_target = 8;
        cfg.max_inflight_per_stream = 16;
        cfg.net = FabricConfig::lossy(1e-3, 2);
        cfg.faults = FaultPlan::survivable_crash(SimTime::from_nanos(400_000), vec![1]);
        Cluster::new(cfg, Workload::random_4k(3, 400)).run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "crash-under-loss replay diverged");
    assert_eq!(a.groups_done, 1_200, "crash must not lose or double groups");
    assert_eq!(a.recoveries.len(), 1);
    assert_eq!(a.epochs.len(), 2);
    assert!(a.recoveries[0].records_scanned > 0);
    assert!(a.finished_at > a.recoveries[0].resumed_at, "run resumed");
}

#[test]
fn run_metrics_snapshot_identical_with_multi_initiator_crash_under_loss() {
    // The multi-initiator counterpart of the crash-under-loss rail:
    // three initiators (one tenant each, own sequencer / NIC /
    // completer / stream slice) over two shared targets, 0.1% loss on
    // two paths, and a mid-flight power failure of target 1. The same
    // `(config, seed)` must reproduce the *entire* `RunMetrics` —
    // per-initiator and per-tenant breakdowns included — and every
    // tenant must come through the crash exactly-once.
    let run = || {
        let mut cfg = ClusterConfig::multi_initiator(OrderingMode::Rio { merge: true }, 3, 1, 2);
        cfg.net = FabricConfig::lossy(1e-3, 2);
        cfg.faults = FaultPlan::survivable_crash(SimTime::from_nanos(400_000), vec![1]);
        Cluster::new(cfg, Workload::random_4k(3, 400)).run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "multi-initiator crash-under-loss replay diverged");
    assert_eq!(a.groups_done, 1_200, "crash must not lose or double groups");
    assert_eq!(a.recoveries.len(), 1);
    assert_eq!(a.initiators.len(), 3);
    assert_eq!(a.tenants.len(), 3);
    for t in &a.tenants {
        assert_eq!(t.groups_done, 400, "tenant {} not exactly-once", t.tenant);
    }
    assert!(a.tenant_fairness() >= 0.95, "equal weights must stay fair");
}

#[test]
fn explicit_default_initiator_reproduces_legacy_snapshots() {
    // The compatibility pin: `initiators: [default]` must be
    // *byte-identical* to the legacy scalar-field path — same event
    // interleaving (pinned to the pre-tenancy literals), same full
    // `RunMetrics` — in every mode. A divergence here means the
    // multi-initiator generalization changed single-initiator runs.
    let expected = [
        (OrderingMode::Orderless, 5_039u64),
        (OrderingMode::LinuxNvmf, 1_443),
        (OrderingMode::Horae, 10_784),
        (OrderingMode::Rio { merge: true }, 5_061),
    ];
    for (mode, pinned_events) in expected {
        let groups = if mode == OrderingMode::LinuxNvmf {
            60
        } else {
            400
        };
        let legacy = Cluster::new(small(mode.clone(), 3), Workload::random_4k(3, groups)).run();
        let explicit = {
            let mut cfg = small(mode.clone(), 3);
            cfg.initiators = vec![InitiatorConfig {
                cores: cfg.initiator_cores,
                streams: cfg.streams,
                tenant: 0,
                weight: 1,
            }];
            Cluster::new(cfg, Workload::random_4k(3, groups)).run()
        };
        assert_eq!(
            legacy.events_processed,
            pinned_events,
            "{}: single-initiator event count moved off the snapshot",
            mode.label()
        );
        assert_eq!(
            legacy,
            explicit,
            "{}: explicit [default] initiator diverged from the legacy path",
            mode.label()
        );
    }
}

#[test]
fn run_metrics_snapshot_identical_with_tracing_enabled() {
    // The tracing counterpart of the three snapshot rails above: with
    // per-command stage tracing on, the whole `RunMetrics` — the
    // `LatencyBreakdown` histograms and every trace record included —
    // must still be a pure function of `(config, seed)`, across all
    // four engines, over a lossy fabric, and through a crash.
    for mode in [
        OrderingMode::Orderless,
        OrderingMode::LinuxNvmf,
        OrderingMode::Horae,
        OrderingMode::Rio { merge: true },
    ] {
        let groups = if mode == OrderingMode::LinuxNvmf {
            60
        } else {
            400
        };
        let run = || {
            let mut cfg = small(mode.clone(), 3);
            cfg.net = FabricConfig::lossy(0.05, 2);
            cfg.net.migrate_every = 32;
            cfg.trace = Some(TraceConfig { ring: 1 << 16 });
            Cluster::new(cfg, Workload::random_4k(3, groups)).run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "{} traced replay diverged", mode.label());
        let bd = a.breakdown.as_ref().expect("tracing was on");
        assert!(bd.completed > 0, "{} traced no commands", mode.label());
    }
    // And the crash-under-loss shape.
    let run = || {
        let mut cfg = ClusterConfig::four_ssd_two_targets(OrderingMode::Rio { merge: true }, 3);
        cfg.initiator_cores = 8;
        for t in &mut cfg.targets {
            t.cores = 8;
        }
        cfg.qps_per_target = 8;
        cfg.max_inflight_per_stream = 16;
        cfg.net = FabricConfig::lossy(1e-3, 2);
        cfg.faults = FaultPlan::survivable_crash(SimTime::from_nanos(400_000), vec![1]);
        cfg.trace = Some(TraceConfig { ring: 1 << 16 });
        Cluster::new(cfg, Workload::random_4k(3, 400)).run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "traced crash-under-loss replay diverged");
    assert!(a.breakdown.as_ref().unwrap().aborted > 0, "crash strands traces");
}

#[test]
fn tracing_disabled_is_observably_free() {
    // The zero-overhead contract: with `trace: None` the simulation
    // must be *bit-identical* to the pre-tracing engine — tracing may
    // not add events, consume rng draws, or perturb any counter. Two
    // teeth: (1) event counts pinned to the literals captured before
    // the trace subsystem existed; (2) an enabled run differs from a
    // disabled run in the `breakdown` field and nothing else.
    let expected = [
        (OrderingMode::Orderless, 5_039u64, 5_351u64),
        (OrderingMode::LinuxNvmf, 1_443, 1_497),
        (OrderingMode::Horae, 10_784, 10_647),
        (OrderingMode::Rio { merge: true }, 5_061, 5_297),
    ];
    for (mode, clean_events, lossy_events) in expected {
        let groups = if mode == OrderingMode::LinuxNvmf {
            60
        } else {
            400
        };
        let run = |trace: Option<TraceConfig>, lossy: bool| {
            let mut cfg = small(mode.clone(), 3);
            if lossy {
                cfg.net = FabricConfig::lossy(0.05, 2);
                cfg.net.migrate_every = 32;
            }
            cfg.trace = trace;
            Cluster::new(cfg, Workload::random_4k(3, groups)).run()
        };
        for (lossy, pinned) in [(false, clean_events), (true, lossy_events)] {
            let off = run(None, lossy);
            assert_eq!(
                off.events_processed,
                pinned,
                "{} (lossy={lossy}): disabled-tracing event count moved off the pre-tracing snapshot",
                mode.label()
            );
            assert!(off.breakdown.is_none());
            let mut on = run(Some(TraceConfig::default()), lossy);
            assert!(on.breakdown.is_some());
            on.breakdown = None;
            assert_eq!(
                on,
                off,
                "{} (lossy={lossy}): tracing perturbed the simulation",
                mode.label()
            );
        }
    }
    // The crash shape, pinned the same way.
    let run = |trace: Option<TraceConfig>| {
        let mut cfg = ClusterConfig::four_ssd_two_targets(OrderingMode::Rio { merge: true }, 3);
        cfg.initiator_cores = 8;
        for t in &mut cfg.targets {
            t.cores = 8;
        }
        cfg.qps_per_target = 8;
        cfg.max_inflight_per_stream = 16;
        cfg.net = FabricConfig::lossy(1e-3, 2);
        cfg.faults = FaultPlan::survivable_crash(SimTime::from_nanos(400_000), vec![1]);
        cfg.trace = trace;
        Cluster::new(cfg, Workload::random_4k(3, 400)).run()
    };
    let off = run(None);
    assert_eq!(off.events_processed, 5_046, "crash event count moved");
    assert_eq!(off.commands_sent, 1_237, "crash command count moved");
    let mut on = run(Some(TraceConfig::default()));
    assert!(on.breakdown.is_some());
    on.breakdown = None;
    assert_eq!(on, off, "tracing perturbed the crash run");
}

#[test]
fn telemetry_disabled_is_observably_free() {
    // Telemetry holds the same zero-overhead contract as tracing: with
    // `telemetry: None` the run is bit-identical to the pre-telemetry
    // engine (the pinned event counts below are the same literals the
    // tracing test pins), and an enabled run differs in the
    // `telemetry` field and nothing else — the sampler is passive, so
    // it may not add events, consume rng draws, or perturb a counter.
    let expected = [
        (OrderingMode::Orderless, 5_039u64, 5_351u64),
        (OrderingMode::LinuxNvmf, 1_443, 1_497),
        (OrderingMode::Horae, 10_784, 10_647),
        (OrderingMode::Rio { merge: true }, 5_061, 5_297),
    ];
    for (mode, clean_events, lossy_events) in expected {
        let groups = if mode == OrderingMode::LinuxNvmf {
            60
        } else {
            400
        };
        let run = |telemetry: Option<TelemetryConfig>, lossy: bool| {
            let mut cfg = small(mode.clone(), 3);
            if lossy {
                cfg.net = FabricConfig::lossy(0.05, 2);
                cfg.net.migrate_every = 32;
            }
            cfg.telemetry = telemetry;
            Cluster::new(cfg, Workload::random_4k(3, groups)).run()
        };
        for (lossy, pinned) in [(false, clean_events), (true, lossy_events)] {
            let off = run(None, lossy);
            assert_eq!(
                off.events_processed,
                pinned,
                "{} (lossy={lossy}): disabled-telemetry event count moved off the snapshot",
                mode.label()
            );
            assert!(off.telemetry.is_none());
            let mut on = run(Some(TelemetryConfig::default()), lossy);
            assert!(on.telemetry.is_some());
            on.telemetry = None;
            assert_eq!(
                on,
                off,
                "{} (lossy={lossy}): telemetry perturbed the simulation",
                mode.label()
            );
        }
    }
    // The crash shape, pinned the same way.
    let run = |telemetry: Option<TelemetryConfig>| {
        let mut cfg = ClusterConfig::four_ssd_two_targets(OrderingMode::Rio { merge: true }, 3);
        cfg.initiator_cores = 8;
        for t in &mut cfg.targets {
            t.cores = 8;
        }
        cfg.qps_per_target = 8;
        cfg.max_inflight_per_stream = 16;
        cfg.net = FabricConfig::lossy(1e-3, 2);
        cfg.faults = FaultPlan::survivable_crash(SimTime::from_nanos(400_000), vec![1]);
        cfg.telemetry = telemetry;
        Cluster::new(cfg, Workload::random_4k(3, 400)).run()
    };
    let off = run(None);
    assert_eq!(off.events_processed, 5_046, "crash event count moved");
    assert_eq!(off.commands_sent, 1_237, "crash command count moved");
    let mut on = run(Some(TelemetryConfig::default()));
    assert!(on.telemetry.is_some());
    on.telemetry = None;
    assert_eq!(on, off, "telemetry perturbed the crash run");
}

#[test]
fn telemetry_times_the_crash_dip_and_recovery() {
    // The observability acceptance rail: on the 3-initiator
    // crash-under-loss config the time series must *show* the crash —
    // healthy delivery before the fault, a dip to zero while the
    // cluster recovers, the watchdog flagging those windows as stalls
    // annotated with the recovery span, and delivery resuming after.
    let mut cfg = ClusterConfig::multi_initiator(OrderingMode::Rio { merge: true }, 3, 1, 2);
    cfg.net = FabricConfig::lossy(1e-3, 2);
    cfg.faults = FaultPlan::survivable_crash(SimTime::from_nanos(400_000), vec![1]);
    cfg.telemetry = Some(TelemetryConfig::default());
    let m = Cluster::new(cfg, Workload::random_4k(3, 400)).run();
    let t = m.telemetry.as_ref().expect("telemetry enabled");

    assert_eq!(t.recovery_spans.len(), 1, "one crash, one recovery span");
    let span = &t.recovery_spans[0];
    assert_eq!(span.fault, 0);

    // Throughput before the crash: some pre-fault bucket delivers.
    let bucket_ns = t.bucket.as_nanos();
    let pre_crash_peak = t
        .buckets
        .iter()
        .enumerate()
        .filter(|(i, _)| t.bucket_start(*i).as_nanos() + bucket_ns <= span.from.as_nanos())
        .map(|(_, b)| b.delivered_groups)
        .max()
        .expect("buckets before the crash");
    assert!(pre_crash_peak > 0, "no delivery before the crash");

    // The dip: every bucket fully inside the recovery span delivers
    // nothing (redelivery happens at the resume instant, outside).
    let inside: Vec<_> = t
        .buckets
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            let start = t.bucket_start(*i).as_nanos();
            start >= span.from.as_nanos() && start + bucket_ns <= span.to.as_nanos()
        })
        .collect();
    assert!(!inside.is_empty(), "recovery span shorter than a bucket");
    assert!(
        inside.iter().all(|(_, b)| b.delivered_groups == 0),
        "delivery during the outage"
    );

    // The watchdog marks the outage and attributes it to the recovery.
    assert!(
        t.stalls.iter().any(|s| s.recovery == Some(0)),
        "no stall window annotated with the recovery span: {:?}",
        t.stalls
    );

    // And the run comes back: a bucket ending after the resume instant
    // delivers again.
    let resumed = t
        .buckets
        .iter()
        .enumerate()
        .filter(|(i, _)| t.bucket_start(*i).as_nanos() + bucket_ns > span.to.as_nanos())
        .any(|(_, b)| b.delivered_groups > 0);
    assert!(resumed, "delivery never resumed after recovery");

    // Conservation on this config too: the series sums to the totals.
    assert_eq!(t.total_delivered_groups(), m.groups_done);
    assert_eq!(t.total_delivered_blocks(), m.blocks_done);
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

    /// Telemetry conservation: whatever the mode, fabric loss, or a
    /// mid-run crash (crash only under Rio — fault injection requires
    /// a Rio mode), the per-bucket delivered series sums exactly to
    /// the run's delivered totals. Nothing is double-counted across
    /// crash, redelivery, and requeue.
    #[test]
    fn prop_telemetry_conserves_delivered_totals(
        mode_idx in 0usize..4,
        loss_idx in 0usize..3,
        crash in proptest::prelude::any::<bool>(),
        seed in 1u64..500,
    ) {
        let modes = [
            OrderingMode::Orderless,
            OrderingMode::LinuxNvmf,
            OrderingMode::Horae,
            OrderingMode::Rio { merge: true },
        ];
        let losses = [0.0f64, 1e-3, 0.05];
        let mode = modes[mode_idx].clone();
        let groups = if mode == OrderingMode::LinuxNvmf { 40 } else { 200 };
        let mut cfg = small(mode.clone(), 3);
        cfg.seed = seed;
        if losses[loss_idx] > 0.0 {
            cfg.net = FabricConfig::lossy(losses[loss_idx], 2);
        }
        if crash && matches!(mode, OrderingMode::Rio { .. }) {
            cfg.faults = FaultPlan::survivable_crash(SimTime::from_nanos(300_000), vec![0]);
        }
        cfg.telemetry = Some(TelemetryConfig::default());
        let m = Cluster::new(cfg, Workload::random_4k(3, groups)).run();
        let t = m.telemetry.as_ref().expect("telemetry enabled");
        proptest::prop_assert_eq!(t.total_delivered_groups(), m.groups_done);
        proptest::prop_assert_eq!(t.total_delivered_blocks(), m.blocks_done);
    }
}

#[test]
fn crash_recovery_restores_a_prefix_on_every_stream() {
    let mut cfg = ClusterConfig::four_ssd_two_targets(OrderingMode::Rio { merge: true }, 6);
    cfg.initiator_cores = 8;
    for t in &mut cfg.targets {
        t.cores = 8;
    }
    cfg.qps_per_target = 8;
    let report = run_crash_recovery(
        cfg,
        Workload::random_4k(6, 1_000_000),
        SimTime::from_nanos(2_500_000),
    );
    assert!(report.records_scanned > 0);
    assert_eq!(report.valid_through.len(), 6);
    for sp in &report.plan.streams {
        assert!(sp.valid_through >= sp.resume_head);
        // Discards only ever target blocks beyond the valid prefix —
        // the plan itself encodes that, but spot-check shape here.
        for d in &sp.discard {
            assert!(d.range.blocks > 0);
        }
    }
}

#[test]
fn riofs_full_crash_sweep_with_applications() {
    // Varmail + MiniKV over RioFS on an ordered device; crash at a
    // sample of prefixes; recovery must always produce a consistent FS.
    let mut fs = RioFs::mkfs(OrderedDev::new(16 * 1024), 4);
    let mut vm = Varmail::new(5, 8, 0);
    for _ in 0..150 {
        vm.step(&mut fs).expect("varmail");
    }
    let mut kv = MiniKv::open(&mut fs, 1, 8 * 1024);
    for i in 0..50u32 {
        kv.put(&mut fs, format!("k{i}").as_bytes(), &[i as u8; 256])
            .expect("put");
    }
    let dev = fs.into_device();
    let groups = dev.groups();
    assert!(groups > 100, "expected plenty of ordered groups");
    // Sweep a sample of crash points (every 7th, plus the edges).
    let mut points: Vec<u64> = (0..=groups).step_by(7).collect();
    points.push(groups);
    for keep in points {
        let img = dev.crash_image(keep);
        let recovered = RioFs::mount(img).expect("mount crash image");
        let problems = recovered.fsck();
        assert!(
            problems.is_empty(),
            "fsck at prefix {keep}/{groups}: {problems:?}"
        );
    }
    // The settled image retains every fsync'ed KV record.
    let settled = RioFs::mount(dev.settled_image()).expect("settled");
    assert!(settled.stat("kv.wal.0").unwrap_or(0) > 0);
}

#[test]
fn fsync_semantics_hold_across_all_engines() {
    for mode in [
        OrderingMode::Rio { merge: true },
        OrderingMode::Rio { merge: false },
        OrderingMode::Horae,
        OrderingMode::LinuxNvmf,
    ] {
        let m = Cluster::new(small(mode.clone(), 2), Workload::fsync_append(2, 50)).run();
        assert_eq!(m.ops_done, 100, "{}", mode.label());
        assert!(m.op_latency.mean().as_micros_f64() > 1.0);
        assert!(
            m.op_latency.quantile(0.99) >= m.op_latency.quantile(0.5),
            "tail sanity"
        );
    }
}
