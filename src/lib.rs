//! Rio: order-preserving and CPU-efficient remote storage access.
//!
//! A full reproduction of *Liao, Yang, Shu — "Rio: Order-Preserving and
//! CPU-Efficient Remote Storage Access" (EuroSys 2023)* as a Rust
//! workspace. This facade crate re-exports every subsystem:
//!
//! * [`order`] — the paper's contribution: ordering attributes, the
//!   sequencer, ORDER-queue merging/splitting, the target submission
//!   gate, the PMR log, in-order completion, and crash recovery.
//! * [`proto`] — NVMe(-oF) wire formats including the Table 1 command
//!   extension.
//! * [`ssd`], [`net`] — device models: NVMe SSDs (flash/Optane, write
//!   caches, FLUSH, PMR) and an RDMA fabric (RC in-order delivery,
//!   one-sided vs two-sided costs).
//! * [`block`] — bios, plug merging, striped volumes.
//! * [`stack`] — the whole-cluster simulation driving the four ordering
//!   engines (orderless / Linux NVMe-oF / Horae / Rio) plus crash
//!   experiments.
//! * [`fs`] — RioFS: a journaling file system over the ordered block
//!   device, with per-core journals and crash recovery.
//! * [`workloads`] — FIO, Filebench-Varmail and RocksDB-style drivers.
//!
//! See DESIGN.md for the architecture, EXPERIMENTS.md for the
//! paper-vs-measured results, and `examples/` for runnable tours.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use rio_block as block;
pub use rio_fs as fs;
pub use rio_net as net;
pub use rio_order as order;
pub use rio_proto as proto;
pub use rio_sim as sim;
pub use rio_ssd as ssd;
pub use rio_stack as stack;
pub use rio_workloads as workloads;
