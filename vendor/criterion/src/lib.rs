//! Vendored, dependency-free subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this crate
//! provides a minimal wall-clock benchmark harness with criterion's
//! surface: [`Criterion`] with `sample_size`/`measurement_time`/
//! `warm_up_time`, [`Bencher::iter`] and [`Bencher::iter_batched`],
//! [`BatchSize`], [`black_box`], and the [`criterion_group!`]/
//! [`criterion_main!`] macros (both the plain and the
//! `name/config/targets` forms).
//!
//! Statistics are intentionally simple: per benchmark it reports the
//! mean, minimum, and maximum nanoseconds per iteration over
//! `sample_size` samples, after a warm-up period. There is no outlier
//! rejection, plotting, or saved baselines.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; only a sizing hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Times closures handed to [`Criterion::bench_function`].
pub struct Bencher<'a> {
    cfg: &'a Criterion,
    /// Collected per-sample mean nanoseconds per iteration.
    samples: Vec<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, called in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: how many iterations fill one sample's time slice?
        let slice = self.cfg.measurement_time.as_secs_f64() / self.cfg.sample_size as f64;
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((slice / once).clamp(1.0, 1e7)) as u64;

        let warm_until = Instant::now() + self.cfg.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine());
        }

        self.samples.clear();
        for _ in 0..self.cfg.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            self.samples.push(ns);
        }
    }

    /// Times `routine` over inputs built by the untimed `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.cfg.warm_up_time;
        while Instant::now() < warm_until {
            let input = setup();
            black_box(routine(input));
        }

        // One setup + one timed routine call per iteration; several
        // iterations per sample to dampen timer granularity.
        let iters_per_sample = 16u64;
        self.samples.clear();
        for _ in 0..self.cfg.sample_size {
            let mut total_ns = 0u128;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total_ns += start.elapsed().as_nanos();
            }
            self.samples.push(total_ns as f64 / iters_per_sample as f64);
        }
    }
}

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget for one benchmark's samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the untimed warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            cfg: self,
            samples: Vec::new(),
        };
        f(&mut b);
        let samples = b.samples;
        if samples.is_empty() {
            println!("{name:<32} (no samples collected)");
            return self;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!("{name:<32} time: [{min:>10.1} ns {mean:>10.1} ns {max:>10.1} ns]/iter");
        self
    }
}

/// Bundles benchmark functions into one group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(1));
        work(&mut c);
    }

    criterion_group!(plain_group, work);
    criterion_group!(
        name = configured_group;
        config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(20)).warm_up_time(Duration::from_millis(1));
        targets = work
    );

    #[test]
    fn groups_compile_and_run() {
        configured_group();
        let _ = plain_group as fn();
    }
}
