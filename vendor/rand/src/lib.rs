//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to
//! crates.io, so the workspace vendors the thin slice of `rand` it
//! actually uses: [`rngs::SmallRng`] (xoshiro256++ seeded via
//! SplitMix64, the same algorithm real `rand` 0.8 uses on 64-bit
//! targets), [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_range`, and `gen_bool`. Determinism per seed is the only
//! contract callers rely on; statistical quality matches xoshiro256++.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Rngs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an rng from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as u64 + off) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + f64::sample(rng) * (self.end - self.start);
        // Rounding in the affine map can land exactly on `end`; keep
        // the half-open contract.
        v.min(self.end.next_down())
    }
}

/// High-level draws; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete rng implementations.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the algorithm behind `rand 0.8`'s 64-bit
    /// `SmallRng`, seeded with SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = r.gen_range(0..=5);
            assert!(w <= 5);
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_degenerate_range() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(r.gen_range(3u64..=3), 3);
        }
    }
}
