//! Vendored, dependency-light subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the slice of `proptest` the workspace tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), the
//! [`Strategy`] trait with `prop_map`/`boxed`, `any::<T>()`, integer
//! range strategies, tuple strategies, [`collection::vec`],
//! [`option::of`], [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline stub:
//!
//! * **No shrinking.** A failing case panics with the underlying
//!   `assert!` message; only `prop_assert_eq!`/`prop_assert_ne!` show
//!   the compared values, and inputs are not minimized.
//! * **Deterministic seeding.** Each property derives its RNG seed from
//!   the test function's name, so failures reproduce exactly without a
//!   persistence file.
//! * `prop_assert*` delegate to `assert*` (panic instead of early
//!   `Err` return), which is equivalent for pass/fail purposes here.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies while generating a case.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Creates an rng whose seed is derived from `name` (FNV-1a), so a
    /// property's case sequence is stable across runs and processes.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            self.inner.gen_range(0..bound)
        }
    }
}

/// A generator of values for one property argument.
///
/// Unlike real proptest there is no value tree: `new_value` draws a
/// fully-formed value and no shrinking happens afterwards.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always-`value` strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

// `f64` ranges (loss rates, jitter amplitudes). Half-open only: the
// vendored rand samples uniform floats on `Range<f64>`.
impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.inner.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice between same-valued strategies ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].new_value(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `[S::Value; N]`.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.new_value(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),+ $(,)?) => {$(
            /// Generates arrays of `element` values.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )+};
    }
    uniform_fns!(
        uniform4 => 4,
        uniform8 => 8,
        uniform16 => 16,
        uniform32 => 32,
    );
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some(value)` half the time and `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.new_value(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: `proptest! { #[test] fn p(x in strat) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Property-test assertion; panics (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Cmd {
        A(u8),
        B(u8, bool),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 1u16..=5, z in any::<u8>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=5).contains(&y));
            let _ = z;
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u8..3, 1..7)) {
            prop_assert!((1..=6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 3));
        }

        #[test]
        fn oneof_and_map(c in prop_oneof![
            (0u8..4).prop_map(Cmd::A),
            (0u8..4, any::<bool>()).prop_map(|(n, f)| Cmd::B(n, f)),
        ]) {
            match c {
                Cmd::A(n) => prop_assert!(n < 4),
                Cmd::B(n, _) => prop_assert!(n < 4),
            }
        }

        #[test]
        fn option_of_produces_both(o in crate::option::of(any::<u8>()), seen in any::<bool>()) {
            let _ = (o, seen);
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
