//! Crash recovery, two ways: the §6.5 one-shot experiment and a
//! survivable mid-flight fault.
//!
//! Part 1 drives 8 threads of ordered writes under Rio, crashes both
//! target servers mid-flight, then runs the recovery algorithm: scan
//! the PMR logs, rebuild the global ordering list, and roll back the
//! blocks that disobey the storage order.
//!
//! Part 2 crashes only one of the two targets — over a lossy two-path
//! fabric, with retransmissions in flight — and lets the run *survive*:
//! recovery happens inside the event loop, rolled-back groups are
//! re-queued, and the workload resumes to completion.
//!
//! Run with: `cargo run --release --example crash_recovery`

use rio::net::FabricProfile;
use rio::sim::SimTime;
use rio::ssd::SsdProfile;
use rio::stack::crash::run_crash_recovery;
use rio::stack::{
    Cluster, ClusterConfig, FabricConfig, FaultPlan, OrderingMode, TargetConfig, Workload,
};

fn base_cfg() -> ClusterConfig {
    ClusterConfig {
        seed: 2023,
        mode: OrderingMode::Rio { merge: true },
        initiator_cores: 8,
        targets: vec![
            TargetConfig {
                ssds: vec![SsdProfile::optane905p()],
                cores: 8,
            },
            TargetConfig {
                ssds: vec![SsdProfile::pm981()],
                cores: 8,
            },
        ],
        fabric: FabricProfile::connectx6(),
        net: Default::default(),
        cpu: Default::default(),
        streams: 8,
        qps_per_target: 8,
        stripe_blocks: 1,
        max_inflight_per_stream: 32,
        plug_merge: true,
        pin_stream_to_qp: true,
        integrity: false,
        faults: FaultPlan::none(),
        trace: None,
        telemetry: None,
        initiators: Vec::new(),
    }
}

fn main() {
    // ---- Part 1: the classic §6.5 report -------------------------------
    let wl = Workload::random_4k(8, 1_000_000);
    println!("Running 8 threads of 4 KB ordered writes over 2 targets,");
    println!("then pulling the power at t = 3 ms...\n");
    let report = run_crash_recovery(base_cfg(), wl, SimTime::from_nanos(3_000_000));

    println!("Crash at {}", report.crashed_at);
    println!(
        "Phase 1 (order rebuild): {:.2} ms — scanned {} PMR records",
        report.order_rebuild.as_secs_f64() * 1e3,
        report.records_scanned
    );
    println!(
        "Phase 2 (data recovery): {:.2} ms — {} out-of-order blocks discarded",
        report.data_recovery.as_secs_f64() * 1e3,
        report.discards
    );
    println!("\nPer-stream valid prefixes (the D1 <- ... <- Dk of the proof):");
    for (stream, seq) in report.valid_through.iter().take(8) {
        println!(
            "  stream {:>2}: global order intact through seq {}",
            stream.0, seq.0
        );
    }
    println!("\nEvery stream recovered to a prefix of its submitted order —");
    println!("no out-of-order persistence survives (paper §4.8).");

    // ---- Part 2: a survivable crash on a lossy fabric ------------------
    println!("\n----------------------------------------------------------");
    println!("Now the same cluster survives its crash: loss = 1e-3 over");
    println!("2 paths, target 1 power-fails mid-flight, and the run");
    println!("recovers in place and finishes the workload.\n");

    let mut cfg = base_cfg();
    cfg.net = FabricConfig::lossy(1e-3, 2);
    cfg.faults = FaultPlan::survivable_crash(SimTime::from_nanos(1_500_000), vec![1]);
    let m = Cluster::new(cfg, Workload::random_4k(8, 600)).run();

    let r = &m.recoveries[0];
    println!(
        "Crash at {} -> resumed at {} (rebuild {:.2} ms + discard {:.2} ms)",
        r.crashed_at,
        r.resumed_at,
        r.order_rebuild.as_secs_f64() * 1e3,
        r.data_recovery.as_secs_f64() * 1e3,
    );
    let requeued: u64 = r.streams.iter().map(|s| s.requeued).sum();
    let redelivered: u64 = r.streams.iter().map(|s| s.redelivered).sum();
    println!("{requeued} groups rolled back and re-executed, {redelivered} redelivered");
    println!(
        "Groups completed: {} of {} (exactly once)",
        m.groups_done,
        8 * 600
    );
    for (i, e) in m.epochs.iter().enumerate() {
        println!(
            "  epoch {i}: {:>6} groups, {:>8.1} KIOPS",
            e.groups_done,
            e.block_iops() / 1e3
        );
    }
}
