//! The §6.5 crash-recovery experiment, narrated.
//!
//! Drives 8 threads of ordered writes under Rio, crashes both target
//! servers mid-flight, then runs the recovery algorithm: scan the PMR
//! logs, rebuild the global ordering list, and roll back the blocks
//! that disobey the storage order.
//!
//! Run with: `cargo run --release --example crash_recovery`

use rio::net::FabricProfile;
use rio::sim::SimTime;
use rio::ssd::SsdProfile;
use rio::stack::crash::run_crash_recovery;
use rio::stack::{ClusterConfig, OrderingMode, TargetConfig, Workload};

fn main() {
    let cfg = ClusterConfig {
        seed: 2023,
        mode: OrderingMode::Rio { merge: true },
        initiator_cores: 8,
        targets: vec![
            TargetConfig {
                ssds: vec![SsdProfile::optane905p()],
                cores: 8,
            },
            TargetConfig {
                ssds: vec![SsdProfile::pm981()],
                cores: 8,
            },
        ],
        fabric: FabricProfile::connectx6(),
        net: Default::default(),
        cpu: Default::default(),
        streams: 8,
        qps_per_target: 8,
        stripe_blocks: 1,
        max_inflight_per_stream: 32,
        plug_merge: true,
        pin_stream_to_qp: true,
    };
    let wl = Workload::random_4k(8, 1_000_000);
    println!("Running 8 threads of 4 KB ordered writes over 2 targets,");
    println!("then pulling the power at t = 3 ms...\n");
    let report = run_crash_recovery(cfg, wl, SimTime::from_nanos(3_000_000));

    println!("Crash at {}", report.crashed_at);
    println!(
        "Phase 1 (order rebuild): {:.2} ms — scanned {} PMR records",
        report.order_rebuild.as_secs_f64() * 1e3,
        report.records_scanned
    );
    println!(
        "Phase 2 (data recovery): {:.2} ms — {} out-of-order blocks discarded",
        report.data_recovery.as_secs_f64() * 1e3,
        report.discards
    );
    println!("\nPer-stream valid prefixes (the D1 <- ... <- Dk of the proof):");
    for (stream, seq) in report.valid_through.iter().take(8) {
        println!(
            "  stream {:>2}: global order intact through seq {}",
            stream.0, seq.0
        );
    }
    println!("\nEvery stream recovered to a prefix of its submitted order —");
    println!("no out-of-order persistence survives (paper §4.8).");
}
