//! Lossy fabric walkthrough: ordering survives a fabric that drops,
//! retransmits and reorders.
//!
//! The fabric model segments every message into MTU packets, samples a
//! deterministic per-packet drop, and recovers with go-back-N: the
//! sender finishes the window, waits a NAK-style recovery latency, and
//! resends from the lost packet. A retransmitted command is overtaken
//! by its queue-pair successors — exactly the reordering Rio's
//! target-side submission gate absorbs. This example turns the loss
//! knob and spreads traffic over four asymmetric paths, then shows:
//!
//! 1. every ordering engine still completes every group exactly once;
//! 2. Rio's deep asynchronous window hides the recovery stalls
//!    (graceful degradation) while the serial Linux NVMe-oF chain pays
//!    each one on its critical path (sharp degradation);
//! 3. the fabric counters (packets, drops, retransmits, per-path load)
//!    surfaced through `RunMetrics::net`.
//!
//! Run with: `cargo run --release --example lossy_fabric`

use rio::ssd::SsdProfile;
use rio::stack::{Cluster, ClusterConfig, FabricConfig, OrderingMode, Workload};

fn run_seeded(mode: OrderingMode, loss: f64, migrate: u64, seed: u64) -> rio::stack::RunMetrics {
    let groups = if mode == OrderingMode::LinuxNvmf {
        2_000
    } else {
        8_000
    };
    let mut cfg = ClusterConfig::single_ssd(mode, SsdProfile::optane905p(), 4);
    cfg.seed = seed;
    // Rio's whole design is a deep asynchronous pipeline; give every
    // engine the same window so the comparison is fair.
    cfg.max_inflight_per_stream = 64;
    // 4 asymmetric paths (bandwidth split evenly, staggered latency),
    // per-QP path pinning, and packet loss. The headline ladder keeps
    // migration off: drop-triggered failover re-seats a serial
    // engine's QPs across the asymmetric paths, which moves its
    // throughput a couple of percent in either direction and muddies
    // the loss trend (try it: set `migrate` nonzero below).
    cfg.net = FabricConfig::lossy(loss, 4);
    cfg.net.migrate_every = migrate;
    Cluster::new(cfg, Workload::random_4k(4, groups)).run()
}

/// Mean throughput over a few seeds: each run is deterministic, but
/// the serial engines ride jittered asymmetric paths, so a single seed
/// is noisy at low loss rates.
fn mean_iops(mode: OrderingMode, loss: f64) -> f64 {
    let seeds = [42, 1337, 9001];
    seeds
        .iter()
        .map(|&s| run_seeded(mode.clone(), loss, 0, s).block_iops())
        .sum::<f64>()
        / seeds.len() as f64
}

fn main() {
    println!("Lossy multi-path fabric: 4 KB ordered writes, 4 threads,");
    println!("4 asymmetric paths, per-QP path pinning (mean of 3 seeds)\n");
    let losses = [0.0, 1e-3, 1e-2];
    for mode in [
        OrderingMode::LinuxNvmf,
        OrderingMode::Horae,
        OrderingMode::Rio { merge: true },
        OrderingMode::Orderless,
    ] {
        let series: Vec<f64> = losses.iter().map(|&l| mean_iops(mode.clone(), l)).collect();
        let base = series[0];
        print!("{:>14}:", mode.label());
        for iops in &series {
            print!(" {:>8.1}K ({:>5.1}%)", iops / 1e3, 100.0 * iops / base);
        }
        println!();
    }
    println!("                 loss=0      loss=1e-3    loss=1e-2  (abs, % of lossless)\n");

    // Zoom into Rio at 1% loss, now with migration every 256 messages
    // (plus failover on timeout): what the fabric actually did.
    let m = run_seeded(OrderingMode::Rio { merge: true }, 1e-2, 256, 42);
    println!(
        "RIO @ 1% loss: {} groups done exactly once, {} packets, {} drops,",
        m.groups_done, m.net.packets, m.net.drops
    );
    println!(
        "{} retransmits over {} recovery rounds; the gate buffered {} commands",
        m.net.retransmits, m.net.retx_rounds, m.gate_buffered
    );
    println!("that retransmission delivered after their successors.");
    for (i, p) in m.net.per_path.iter().enumerate() {
        println!(
            "    path {i}: {:>6} pkts  {:>4} drops  {:>4} retransmits",
            p.packets, p.drops, p.retransmits
        );
    }
}
