//! Filebench Varmail running on the real RioFS (§6.4).
//!
//! Runs the mail-server mix (create/append/fsync/read/delete) against
//! the journaling file system, remounts, and verifies consistency.
//!
//! Run with: `cargo run --release --example varmail`

use rio::fs::{MemDev, RioFs};
use rio::workloads::Varmail;

fn main() {
    let mut fs = RioFs::mkfs(MemDev::new(16 * 1024), 4);
    let mut vm = Varmail::new(42, 32, 0);

    println!("Running 5000 Varmail operations (mail-server mix)...");
    for _ in 0..5000 {
        vm.step(&mut fs).expect("varmail op");
    }
    println!(
        "  creates {}  appends {}  reads {}  deletes {}  (fsyncs {})",
        vm.stats.creates, vm.stats.appends, vm.stats.reads, vm.stats.deletes, fs.fsyncs
    );
    let problems = fs.fsck();
    assert!(problems.is_empty(), "fsck found: {problems:?}");
    println!("  fsck: clean ({} live mail files)", fs.readdir().len());

    // Remount (journal replay) and verify again.
    let fs2 = RioFs::mount(fs.into_device()).expect("remount");
    assert!(fs2.fsck().is_empty());
    println!("\nRemounted after journal replay: still consistent.");
    println!("The same op mix drives the Figure 15(a) throughput comparison");
    println!("(`cargo bench -p rio-bench --bench fig15_applications`).");
}
