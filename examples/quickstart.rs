//! Quickstart: the Rio ordering pipeline end to end, in miniature.
//!
//! Builds a tiny cluster (one initiator, one Optane target), runs the
//! paper's journal-triplet workload under all four ordering engines,
//! and prints the throughput ladder the paper's Figure 2 motivates.
//!
//! Run with: `cargo run --release --example quickstart`

use rio::ssd::SsdProfile;
use rio::stack::{Cluster, ClusterConfig, OrderingMode, Workload};

fn main() {
    println!("Rio quickstart: ordered journal-triplet writes, 4 threads");
    println!("(an 8 KB journal record followed by a 4 KB commit, ordered)\n");
    let mut results = Vec::new();
    for mode in [
        OrderingMode::LinuxNvmf,
        OrderingMode::Horae,
        OrderingMode::Rio { merge: true },
        OrderingMode::Orderless,
    ] {
        let triplets = if mode == OrderingMode::LinuxNvmf {
            300
        } else {
            6_000
        };
        let cfg = ClusterConfig::single_ssd(mode.clone(), SsdProfile::optane905p(), 4);
        let wl = Workload::journal_triplet(4, triplets);
        let m = Cluster::new(cfg, wl).run();
        println!(
            "{:>14}: {:>8.1} K blocks/s, initiator CPU {:>5.2}%, {} NVMe-oF commands",
            mode.label(),
            m.block_iops() / 1e3,
            m.initiator_util * 100.0,
            m.commands_sent,
        );
        results.push((mode.label(), m.block_iops()));
    }
    let rio = results
        .iter()
        .find(|(l, _)| *l == "RIO")
        .expect("rio ran")
        .1;
    let linux = results
        .iter()
        .find(|(l, _)| *l == "Linux")
        .expect("linux ran")
        .1;
    println!(
        "\nRio preserves storage order at {:.0}x the throughput of ordered\nLinux NVMe-oF on this workload — the paper's headline result.",
        rio / linux
    );
}
