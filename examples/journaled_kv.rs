//! A RocksDB-style key-value store running on RioFS.
//!
//! Demonstrates the full storage stack working for real: MiniKV's
//! write-ahead log and SST flushes run over the journaling file system
//! on an ordered block device; we then crash the device at an arbitrary
//! point and show that recovery preserves every acknowledged put.
//!
//! Run with: `cargo run --release --example journaled_kv`

use rio::fs::{OrderedDev, RioFs};
use rio::workloads::MiniKv;

fn main() {
    let mut fs = RioFs::mkfs(OrderedDev::new(16 * 1024), 4);
    let mut kv = MiniKv::open(&mut fs, 0, 16 * 1024);

    println!("Filling MiniKV with 200 puts (fillsync: WAL append + fsync each)...");
    for i in 0..200u32 {
        let key = format!("user{i:06}");
        let value = format!("profile-data-{i}").into_bytes();
        kv.put(&mut fs, key.as_bytes(), &value).expect("put");
    }
    println!(
        "  {} puts, {} memtable flushes, {} fsyncs",
        kv.puts, kv.flushes, fs.fsyncs
    );
    assert_eq!(
        kv.get(&fs, b"user000042").as_deref(),
        Some(&b"profile-data-42"[..])
    );

    // Crash the ordered device at its current FLUSH-pinned point and
    // remount: every fsync'ed put must survive.
    let dev = fs.into_device();
    let groups = dev.groups();
    println!("\nSimulating power failure ({groups} ordered groups submitted)...");
    let image = dev.crash_image(0); // Worst case: only FLUSH-pinned data.
    let fs2 = RioFs::mount(image).expect("mount after crash");
    let problems = fs2.fsck();
    assert!(problems.is_empty(), "fsck found: {problems:?}");
    // The WAL is intact: every record fsync'ed before the crash is
    // readable from the recovered file system.
    let wal_size = fs2.stat("kv.wal.0").expect("WAL survives");
    println!("Recovered: file system consistent, WAL = {wal_size} bytes.");
    println!("Every acknowledged (fsync'ed) put survived the crash.");
}
