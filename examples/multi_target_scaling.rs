//! Scaling ordered writes across multiple target servers (Fig. 10d).
//!
//! Rio's per-server ordering lists mean targets never coordinate on the
//! data path; this example shows ordered throughput scaling from one
//! SSD to four SSDs across two servers, while Linux NVMe-oF stays flat.
//!
//! Run with: `cargo run --release --example multi_target_scaling`

use rio::ssd::SsdProfile;
use rio::stack::{Cluster, ClusterConfig, OrderingMode, Workload};

fn main() {
    println!("Ordered 4 KB random writes, 8 threads, scaling the cluster:\n");
    for (label, mk) in [
        (
            "1 SSD / 1 target ",
            Box::new(|mode: OrderingMode| {
                ClusterConfig::single_ssd(mode, SsdProfile::optane905p(), 8)
            }) as Box<dyn Fn(OrderingMode) -> ClusterConfig>,
        ),
        (
            "4 SSDs / 2 targets",
            Box::new(|mode: OrderingMode| ClusterConfig::four_ssd_two_targets(mode, 8)),
        ),
    ] {
        for mode in [OrderingMode::LinuxNvmf, OrderingMode::Rio { merge: true }] {
            let groups = if mode == OrderingMode::LinuxNvmf {
                400
            } else {
                20_000
            };
            let m = Cluster::new(mk(mode.clone()), Workload::random_4k(8, groups)).run();
            println!(
                "  {label} {:>14}: {:>8.1} K blocks/s",
                mode.label(),
                m.block_iops() / 1e3
            );
        }
    }
    println!("\nRio scales with the hardware because ordering is reconstructed");
    println!("from per-server lists — no cross-server coordination (§4.3.1).");
}
