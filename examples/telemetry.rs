//! Virtual-time telemetry: the run as a time series, plus a Chrome
//! trace you can open in Perfetto.
//!
//! Three initiators (one tenant each) drive ordered 4 KB writes onto
//! two shared targets over a lossy two-path fabric; target 1 loses
//! power mid-run and the cluster recovers in place. With
//! `ClusterConfig.telemetry` set, the run records a deterministic
//! bucketed series — delivered KIOPS, in-flight commands, pending
//! groups, gate occupancy, SSD queue depths, retransmissions — and a
//! stall watchdog flags the outage windows, annotated with the
//! recovery span that explains them.
//!
//! The same run, traced, exports as Chrome `trace_event` JSON:
//! per-command stage spans, per-bucket counter tracks, and a watchdog
//! lane with the recovery/stall bands.
//!
//! Run with: `cargo run --release --example telemetry [-- <trace.json>]`

use rio::sim::SimTime;
use rio::stack::{
    Cluster, ClusterConfig, FabricConfig, FaultPlan, OrderingMode, TelemetryConfig, TraceConfig,
    Workload,
};
use rio_bench::trace_export::{chrome_trace, validate_json};

fn main() {
    let trace_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "rio_trace.json".to_string());

    let mut cfg = ClusterConfig::multi_initiator(OrderingMode::Rio { merge: true }, 3, 1, 2);
    cfg.net = FabricConfig::lossy(1e-3, 2);
    cfg.faults = FaultPlan::survivable_crash(SimTime::from_nanos(400_000), vec![1]);
    cfg.trace = Some(TraceConfig::default());
    cfg.telemetry = Some(TelemetryConfig {
        bucket_us: 50,
        ..Default::default()
    });
    println!("3 initiators x 2 shared targets, 0.1% loss on 2 paths,");
    println!("power failure of target 1 at t = 400 us, survivable.\n");
    let m = Cluster::new(cfg, Workload::random_4k(3, 400)).run();
    let t = m.telemetry.as_ref().expect("telemetry enabled");

    // ---- The time series ----------------------------------------------
    println!(
        "{:>8} {:>8} {:>9} {:>9} {:>9} {:>7} {:>7}",
        "t(us)", "KIOPS", "inflight", "pending", "gate", "ssd q", "retx"
    );
    let mut quiet = 0usize;
    for (i, b) in t.buckets.iter().enumerate() {
        let start = t.bucket_start(i);
        if start.as_nanos() >= m.finished_at.as_nanos() {
            break;
        }
        // The recovery outage is tens of milliseconds of dead air —
        // compress the stretches where nothing happens at all.
        if b.samples == 0 && b.delivered_groups == 0 {
            quiet += 1;
            continue;
        }
        if quiet > 0 {
            println!("{:>8} ({quiet} quiet buckets)", "...");
            quiet = 0;
        }
        let ssd_q: u32 = b.ssd_queue_peak.iter().copied().max().unwrap_or(0);
        let retx: u32 = b.retx_pkts.iter().sum();
        println!(
            "{:>8.0} {:>8.1} {:>9} {:>9} {:>9} {:>7} {:>7}",
            start.as_micros_f64(),
            t.delivered_kiops(i),
            b.inflight_peak,
            b.pending_end,
            b.gate_peak,
            ssd_q,
            retx
        );
    }
    if quiet > 0 {
        println!("{:>8} ({quiet} quiet buckets)", "...");
    }

    // ---- What the watchdog saw ----------------------------------------
    println!();
    for span in &t.recovery_spans {
        println!(
            "recovery of fault {}: {:.0} us -> {:.0} us ({:.0} us outage)",
            span.fault,
            span.from.as_micros_f64(),
            span.to.as_micros_f64(),
            span.to.since(span.from).as_nanos() as f64 / 1e3,
        );
    }
    for s in &t.stalls {
        let attributed = match s.recovery {
            Some(f) => format!(" (recovery of fault {f})"),
            None => String::new(),
        };
        println!(
            "stall: {:.0} us -> {:.0} us, {} group(s) pending{attributed}",
            s.from.as_micros_f64(),
            s.to.as_micros_f64(),
            s.pending
        );
    }
    println!(
        "\ndelivered {} groups / {} blocks across {} buckets (conserved: {})",
        t.total_delivered_groups(),
        t.total_delivered_blocks(),
        t.buckets.len(),
        t.total_delivered_groups() == m.groups_done
    );

    // ---- The Chrome trace ---------------------------------------------
    let json = chrome_trace(&m);
    validate_json(&json).expect("exported trace must be valid JSON");
    std::fs::write(&trace_path, &json).expect("write trace file");
    println!(
        "wrote {} ({} KiB) — open it at https://ui.perfetto.dev",
        trace_path,
        json.len() / 1024
    );
}
